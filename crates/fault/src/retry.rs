//! Retry with exponential backoff, decorrelated jitter, and deadlines.
//!
//! Every coordinator→worker RPC is wrapped in a [`RetryPolicy`]: transient
//! failures (timeouts, connection resets — the WAN reality of federated
//! deployments) are retried with growing, jittered delays; fatal failures
//! (protocol violations, authentication failures) surface immediately.
//! A [`Deadline`] caps the whole retry loop so callers get a bounded
//! worst-case latency instead of an unbounded reconnect storm.
//!
//! The backoff schedule is "decorrelated jitter" (each delay drawn
//! uniformly from `[base, 3 * previous]`, clamped to `[base, cap]`), which
//! spreads synchronized retries from many callers better than plain
//! exponential backoff.

use std::io;
use std::time::{Duration, Instant};

/// Transient-vs-fatal classification of an RPC failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Worth retrying: the operation may succeed on a fresh attempt
    /// (timeout, dropped connection, worker restarting).
    Transient,
    /// Retrying cannot help: the failure is deterministic (malformed
    /// protocol data, privacy denial, invalid request).
    Fatal,
}

/// Classifies an I/O error by kind: network-weather kinds are transient,
/// data-integrity kinds fatal.
pub fn classify_io(e: &io::Error) -> ErrorClass {
    use io::ErrorKind::*;
    match e.kind() {
        TimedOut | WouldBlock | ConnectionReset | ConnectionAborted | ConnectionRefused
        | BrokenPipe | UnexpectedEof | Interrupted | NotConnected | AddrInUse
        | AddrNotAvailable => ErrorClass::Transient,
        _ => ErrorClass::Fatal,
    }
}

/// An absolute point in time the retry loop must not run past.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// Deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Self {
            at: Some(Instant::now() + d),
        }
    }

    /// No deadline: the retry loop is bounded by attempts only.
    pub fn never() -> Self {
        Self { at: None }
    }

    /// Time left, `None` when expired. A never-deadline reports a large
    /// constant remaining.
    pub fn remaining(&self) -> Option<Duration> {
        match self.at {
            None => Some(Duration::from_secs(u64::MAX / 4)),
            Some(at) => at.checked_duration_since(Instant::now()).or({
                // checked_duration_since returns None when `at` has passed.
                None
            }),
        }
    }

    /// True when no time remains.
    pub fn expired(&self) -> bool {
        matches!(self.at, Some(at) if Instant::now() >= at)
    }
}

/// Exponential backoff with decorrelated jitter.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// First delay and lower bound of every jittered draw.
    pub base: Duration,
    /// Upper clamp on any single delay.
    pub cap: Duration,
    /// Maximum attempts (including the first); 0 is treated as 1.
    pub max_attempts: u32,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(5),
            max_attempts: 5,
            jitter_seed: 0x5eed,
        }
    }
}

/// SplitMix64 step: advances `state` and returns the next 64-bit draw.
/// This is the repo's canonical sub-seed derivation — scenario harnesses
/// fan one recorded master seed out into per-component seeds (fault
/// plans, shaping jitter, partition skew) through it, so an entire run
/// replays from a single number.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Iterator over a policy's jittered backoff delays (no sleeping).
#[derive(Debug, Clone)]
pub struct BackoffIter {
    base: Duration,
    cap: Duration,
    prev: Duration,
    state: u64,
    emitted: u32,
    max: u32,
}

impl Iterator for BackoffIter {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        if self.emitted >= self.max {
            return None;
        }
        self.emitted += 1;
        let lo = self.base.as_secs_f64();
        let hi = (self.prev.as_secs_f64() * 3.0).max(lo);
        let unit = (splitmix64(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64;
        let drawn = lo + (hi - lo) * unit;
        let clamped = Duration::from_secs_f64(drawn.min(self.cap.as_secs_f64()));
        self.prev = clamped;
        Some(clamped)
    }
}

impl RetryPolicy {
    /// Policy with the given base/cap delays and attempt budget.
    pub fn new(base: Duration, cap: Duration, max_attempts: u32) -> Self {
        Self {
            base,
            cap,
            max_attempts,
            jitter_seed: 0x5eed,
        }
    }

    /// A policy that never retries (one attempt, no delay).
    pub fn none() -> Self {
        Self {
            base: Duration::ZERO,
            cap: Duration::ZERO,
            max_attempts: 1,
            jitter_seed: 0,
        }
    }

    /// Replaces the jitter seed (distinct seeds decorrelate the backoff
    /// schedules of concurrent callers).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The deterministic delay schedule between attempts: delay `k`
    /// separates attempt `k+1` from attempt `k+2`.
    pub fn delays(&self) -> BackoffIter {
        BackoffIter {
            base: self.base,
            cap: self.cap,
            prev: self.base,
            state: self.jitter_seed,
            emitted: 0,
            max: self.max_attempts.saturating_sub(1),
        }
    }

    /// Runs `op` under this policy: retries [`ErrorClass::Transient`]
    /// failures (per `classify`) with backoff sleeps until the attempt
    /// budget or `deadline` is exhausted. `op` receives the 0-based
    /// attempt index. Returns the last error when retries run out.
    pub fn run<T, E>(
        &self,
        deadline: Deadline,
        mut op: impl FnMut(u32) -> Result<T, E>,
        classify: impl Fn(&E) -> ErrorClass,
    ) -> Result<T, E> {
        self.run_with_sleep(deadline, &mut op, &classify, std::thread::sleep)
    }

    /// [`RetryPolicy::run`] with an injectable sleep (deterministic tests
    /// pass a recorder instead of blocking).
    pub fn run_with_sleep<T, E>(
        &self,
        deadline: Deadline,
        op: &mut impl FnMut(u32) -> Result<T, E>,
        classify: &impl Fn(&E) -> ErrorClass,
        mut sleep: impl FnMut(Duration),
    ) -> Result<T, E> {
        let mut delays = self.delays();
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if classify(&e) == ErrorClass::Fatal {
                        return Err(e);
                    }
                    let Some(delay) = delays.next() else {
                        return Err(e);
                    };
                    // Cap the sleep to the remaining deadline; an expired
                    // deadline ends the loop with the last error.
                    match deadline.remaining() {
                        None => return Err(e),
                        Some(rem) => {
                            if rem.is_zero() {
                                return Err(e);
                            }
                            sleep(delay.min(rem));
                        }
                    }
                }
            }
            attempt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    fn transient() -> io::Error {
        io::Error::new(io::ErrorKind::TimedOut, "t")
    }

    #[test]
    fn classify_timeouts_transient_data_fatal() {
        assert_eq!(classify_io(&transient()), ErrorClass::Transient);
        assert_eq!(
            classify_io(&io::Error::new(io::ErrorKind::BrokenPipe, "x")),
            ErrorClass::Transient
        );
        assert_eq!(
            classify_io(&io::Error::new(io::ErrorKind::InvalidData, "x")),
            ErrorClass::Fatal
        );
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let policy = RetryPolicy::new(Duration::from_millis(1), Duration::from_millis(2), 5);
        let slept = RefCell::new(Vec::new());
        let mut tries = 0;
        let r = policy.run_with_sleep(
            Deadline::never(),
            &mut |a| {
                tries += 1;
                if a < 2 {
                    Err(transient())
                } else {
                    Ok(a)
                }
            },
            &classify_io,
            |d| slept.borrow_mut().push(d),
        );
        assert_eq!(r.unwrap(), 2);
        assert_eq!(tries, 3);
        assert_eq!(slept.borrow().len(), 2);
    }

    #[test]
    fn fatal_errors_do_not_retry() {
        let policy = RetryPolicy::default();
        let mut tries = 0;
        let r: Result<(), _> = policy.run_with_sleep(
            Deadline::never(),
            &mut |_| {
                tries += 1;
                Err(io::Error::new(io::ErrorKind::InvalidData, "bad frame"))
            },
            &classify_io,
            |_| {},
        );
        assert!(r.is_err());
        assert_eq!(tries, 1);
    }

    #[test]
    fn attempt_budget_bounds_retries() {
        let policy = RetryPolicy::new(Duration::from_nanos(1), Duration::from_nanos(2), 4);
        let mut tries = 0;
        let r: Result<(), _> = policy.run_with_sleep(
            Deadline::never(),
            &mut |_| {
                tries += 1;
                Err(transient())
            },
            &classify_io,
            |_| {},
        );
        assert!(r.is_err());
        assert_eq!(tries, 4);
    }

    #[test]
    fn expired_deadline_stops_immediately() {
        let policy = RetryPolicy::new(Duration::from_millis(1), Duration::from_millis(5), 100);
        let deadline = Deadline::after(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        let mut tries = 0;
        let r: Result<(), _> = policy.run_with_sleep(
            deadline,
            &mut |_| {
                tries += 1;
                Err(transient())
            },
            &classify_io,
            |_| {},
        );
        assert!(r.is_err());
        assert_eq!(tries, 1);
    }

    #[test]
    fn delays_respect_base_and_cap() {
        let policy = RetryPolicy::new(Duration::from_millis(10), Duration::from_millis(80), 20);
        let ds: Vec<_> = policy.delays().collect();
        assert_eq!(ds.len(), 19);
        for d in &ds {
            assert!(*d >= Duration::from_millis(10), "{d:?} below base");
            assert!(*d <= Duration::from_millis(80), "{d:?} above cap");
        }
    }

    #[test]
    fn delay_schedule_is_deterministic_per_seed() {
        let p1 = RetryPolicy {
            jitter_seed: 9,
            ..RetryPolicy::default()
        };
        let p2 = RetryPolicy {
            jitter_seed: 9,
            ..RetryPolicy::default()
        };
        let p3 = RetryPolicy {
            jitter_seed: 10,
            ..RetryPolicy::default()
        };
        assert_eq!(
            p1.delays().collect::<Vec<_>>(),
            p2.delays().collect::<Vec<_>>()
        );
        assert_ne!(
            p1.delays().collect::<Vec<_>>(),
            p3.delays().collect::<Vec<_>>()
        );
    }
}
