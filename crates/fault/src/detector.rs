//! Timeout-based failure detection with a per-worker health state machine.
//!
//! The coordinator drives one [`FailureDetector`] for the whole federation.
//! Every heartbeat round reports either a success ([`FailureDetector::record_success`],
//! carrying the worker's epoch so restarts are visible) or a miss
//! ([`FailureDetector::record_miss`]). Consecutive misses walk the worker
//! down the state machine:
//!
//! ```text
//!            misses >= suspect_after      misses >= dead_after
//!  Healthy ───────────────────────▶ Suspect ───────────────────▶ Dead
//!     ▲                               │                            │
//!     │          heartbeat ok         │                            │ supervisor
//!     ├───────────────────────────────┘                            │ begin_recovery()
//!     │                                                            ▼
//!     └────────────────────────────────────────────────────── Recovering
//!                      mark_recovered() after replay
//! ```
//!
//! `Suspect` workers still receive traffic (their RPCs are retried);
//! `Dead` workers are excluded until the supervisor walks them through
//! `Recovering` (reconnect + re-registration replay) back to `Healthy`.

use parking_lot::Mutex;

/// Liveness state of one worker as seen by the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Heartbeats arriving; full participant.
    Healthy,
    /// Missed some heartbeats; still addressed, RPCs retried.
    Suspect,
    /// Missed the dead threshold; excluded from calls until recovered.
    Dead,
    /// Supervisor is re-establishing the channel and replaying state.
    Recovering,
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Dead => "dead",
            HealthState::Recovering => "recovering",
        };
        f.write_str(s)
    }
}

/// Per-worker liveness record.
#[derive(Debug, Clone)]
pub struct WorkerHealth {
    /// Current state-machine position.
    pub state: HealthState,
    /// Heartbeat misses since the last success.
    pub consecutive_misses: u32,
    /// Last epoch the worker reported (bumps when the worker restarts).
    pub epoch: u64,
    /// Last load figure the worker reported (live request count).
    pub load: u32,
    /// Total successful heartbeats observed.
    pub beats: u64,
}

impl WorkerHealth {
    fn new() -> Self {
        Self {
            state: HealthState::Healthy,
            consecutive_misses: 0,
            epoch: 0,
            load: 0,
            beats: 0,
        }
    }
}

/// Thresholds for the miss-count transitions.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Consecutive misses at which Healthy becomes Suspect.
    pub suspect_after: u32,
    /// Consecutive misses at which Suspect becomes Dead.
    pub dead_after: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            suspect_after: 2,
            dead_after: 4,
        }
    }
}

/// What a successful heartbeat revealed about the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatOutcome {
    /// Same epoch as before: the worker kept running.
    Stable,
    /// Epoch advanced: the worker restarted and must be re-initialized
    /// (federated data replay) before it can serve requests again.
    Restarted {
        /// Epoch seen before the restart.
        previous: u64,
        /// Epoch reported now.
        current: u64,
    },
}

/// Coordinator-side failure detector over a fixed set of workers.
pub struct FailureDetector {
    workers: Vec<Mutex<WorkerHealth>>,
    config: DetectorConfig,
}

impl FailureDetector {
    /// Detector for `n` workers, all starting Healthy.
    pub fn new(n: usize, config: DetectorConfig) -> Self {
        Self {
            workers: (0..n).map(|_| Mutex::new(WorkerHealth::new())).collect(),
            config,
        }
    }

    /// Number of tracked workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when no workers are tracked.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The detector's thresholds.
    pub fn config(&self) -> DetectorConfig {
        self.config
    }

    /// Current state of worker `w`.
    pub fn state(&self, w: usize) -> HealthState {
        self.workers[w].lock().state
    }

    /// Counts a state transition into the global metrics registry
    /// (`fault.transitions.<state>`), so failure-detection activity shows
    /// up in run profiles next to the heartbeat/retry counters that
    /// `NetStats` tracks. No-op when observability is disabled or the
    /// state did not change.
    fn note_transition(old: HealthState, new: HealthState) {
        if old == new || !exdra_obs::enabled() {
            return;
        }
        let metric = match new {
            HealthState::Healthy => "fault.transitions.healthy",
            HealthState::Suspect => "fault.transitions.suspect",
            HealthState::Dead => "fault.transitions.dead",
            HealthState::Recovering => "fault.transitions.recovering",
        };
        exdra_obs::global().inc(metric);
    }

    /// Copy of worker `w`'s full health record.
    pub fn health(&self, w: usize) -> WorkerHealth {
        self.workers[w].lock().clone()
    }

    /// Records a successful heartbeat from worker `w` reporting
    /// (`epoch`, `load`). Resets the miss counter; Healthy/Suspect
    /// collapse back to Healthy. Dead/Recovering states are NOT cleared
    /// here — a lone heartbeat from a restarted worker does not mean its
    /// federated state survived; only the supervisor's replay
    /// ([`FailureDetector::mark_recovered`]) revives it.
    pub fn record_success(&self, w: usize, epoch: u64, load: u32) -> HeartbeatOutcome {
        let mut h = self.workers[w].lock();
        let old_state = h.state;
        h.consecutive_misses = 0;
        h.beats += 1;
        h.load = load;
        let outcome = if h.beats > 1 && epoch != h.epoch {
            HeartbeatOutcome::Restarted {
                previous: h.epoch,
                current: epoch,
            }
        } else {
            HeartbeatOutcome::Stable
        };
        h.epoch = epoch;
        if matches!(h.state, HealthState::Suspect) {
            h.state = HealthState::Healthy;
        }
        // A restart while we thought the worker was fine still needs replay.
        if matches!(outcome, HeartbeatOutcome::Restarted { .. })
            && matches!(h.state, HealthState::Healthy)
        {
            h.state = HealthState::Dead;
        }
        Self::note_transition(old_state, h.state);
        outcome
    }

    /// Records a missed/failed heartbeat for worker `w`; returns the state
    /// after applying the thresholds.
    pub fn record_miss(&self, w: usize) -> HealthState {
        let mut h = self.workers[w].lock();
        let old_state = h.state;
        h.consecutive_misses = h.consecutive_misses.saturating_add(1);
        h.state = match h.state {
            HealthState::Healthy | HealthState::Suspect => {
                if h.consecutive_misses >= self.config.dead_after {
                    HealthState::Dead
                } else if h.consecutive_misses >= self.config.suspect_after {
                    HealthState::Suspect
                } else {
                    HealthState::Healthy
                }
            }
            // A miss during recovery sends the worker back to Dead; the
            // supervisor will start over.
            HealthState::Recovering => HealthState::Dead,
            HealthState::Dead => HealthState::Dead,
        };
        Self::note_transition(old_state, h.state);
        h.state
    }

    /// Supervisor claims a Dead worker for recovery (Dead → Recovering).
    /// Returns false when the worker is not Dead (nothing to recover, or
    /// another pass already claimed it).
    pub fn begin_recovery(&self, w: usize) -> bool {
        let mut h = self.workers[w].lock();
        if h.state == HealthState::Dead {
            h.state = HealthState::Recovering;
            Self::note_transition(HealthState::Dead, h.state);
            true
        } else {
            false
        }
    }

    /// Supervisor finished reconnect + replay: Recovering → Healthy.
    pub fn mark_recovered(&self, w: usize) {
        let mut h = self.workers[w].lock();
        if h.state == HealthState::Recovering {
            h.state = HealthState::Healthy;
            h.consecutive_misses = 0;
            Self::note_transition(HealthState::Recovering, h.state);
        }
    }

    /// Directly marks a worker Dead (e.g. a data-path RPC saw its channel
    /// collapse — no need to wait for heartbeat misses to accumulate).
    pub fn mark_dead(&self, w: usize) {
        let mut h = self.workers[w].lock();
        if !matches!(h.state, HealthState::Recovering) {
            let old_state = h.state;
            h.state = HealthState::Dead;
            Self::note_transition(old_state, h.state);
        }
    }

    /// States of all workers, by index.
    pub fn snapshot(&self) -> Vec<HealthState> {
        self.workers.iter().map(|w| w.lock().state).collect()
    }

    /// Indices of workers currently usable for data-path calls
    /// (Healthy or Suspect).
    pub fn live_workers(&self) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| matches!(w.lock().state, HealthState::Healthy | HealthState::Suspect))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_walk_healthy_suspect_dead() {
        let d = FailureDetector::new(1, DetectorConfig::default());
        assert_eq!(d.state(0), HealthState::Healthy);
        assert_eq!(d.record_miss(0), HealthState::Healthy);
        assert_eq!(d.record_miss(0), HealthState::Suspect);
        assert_eq!(d.record_miss(0), HealthState::Suspect);
        assert_eq!(d.record_miss(0), HealthState::Dead);
        assert_eq!(d.record_miss(0), HealthState::Dead);
    }

    #[test]
    fn success_heals_suspect() {
        let d = FailureDetector::new(1, DetectorConfig::default());
        d.record_miss(0);
        d.record_miss(0);
        assert_eq!(d.state(0), HealthState::Suspect);
        assert_eq!(d.record_success(0, 1, 0), HeartbeatOutcome::Stable);
        assert_eq!(d.state(0), HealthState::Healthy);
        assert_eq!(d.health(0).consecutive_misses, 0);
    }

    #[test]
    fn success_does_not_resurrect_dead_worker() {
        let d = FailureDetector::new(1, DetectorConfig::default());
        for _ in 0..4 {
            d.record_miss(0);
        }
        assert_eq!(d.state(0), HealthState::Dead);
        d.record_success(0, 1, 0);
        assert_eq!(d.state(0), HealthState::Dead, "needs supervisor replay");
    }

    #[test]
    fn recovery_arc_dead_recovering_healthy() {
        let d = FailureDetector::new(2, DetectorConfig::default());
        for _ in 0..4 {
            d.record_miss(1);
        }
        assert!(d.begin_recovery(1));
        assert!(!d.begin_recovery(1), "already claimed");
        assert_eq!(d.state(1), HealthState::Recovering);
        d.mark_recovered(1);
        assert_eq!(d.state(1), HealthState::Healthy);
        assert_eq!(d.snapshot(), vec![HealthState::Healthy; 2]);
    }

    #[test]
    fn miss_during_recovery_goes_back_to_dead() {
        let d = FailureDetector::new(1, DetectorConfig::default());
        d.mark_dead(0);
        assert!(d.begin_recovery(0));
        assert_eq!(d.record_miss(0), HealthState::Dead);
    }

    #[test]
    fn epoch_change_reports_restart_and_requires_replay() {
        let d = FailureDetector::new(1, DetectorConfig::default());
        assert_eq!(d.record_success(0, 7, 0), HeartbeatOutcome::Stable);
        assert_eq!(
            d.record_success(0, 8, 0),
            HeartbeatOutcome::Restarted {
                previous: 7,
                current: 8
            }
        );
        // Restart with a fresh (empty) worker: treated as dead until replayed.
        assert_eq!(d.state(0), HealthState::Dead);
    }

    #[test]
    fn live_workers_excludes_dead() {
        let d = FailureDetector::new(3, DetectorConfig::default());
        d.mark_dead(1);
        assert_eq!(d.live_workers(), vec![0, 2]);
    }
}
