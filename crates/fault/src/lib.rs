#![warn(missing_docs)]
//! # exdra-fault
//!
//! Fault-tolerance primitives for the federated runtime. The paper's
//! deployment model assumes standing workers that never die; production
//! federations (the ROADMAP north star) see worker crashes, WAN
//! partitions, and stragglers. This crate supplies the building blocks the
//! rest of the stack composes into a supervised federation:
//!
//! * [`retry`] — [`retry::RetryPolicy`]: exponential backoff with
//!   decorrelated jitter, capped by a [`retry::Deadline`], plus the
//!   transient-vs-fatal [`retry::ErrorClass`] taxonomy retry loops key on,
//! * [`detector`] — per-worker liveness tracking: the
//!   [`detector::WorkerHealth`] state machine
//!   (`Healthy → Suspect → Dead → Recovering`) driven by heartbeat
//!   outcomes with a consecutive-miss threshold,
//! * [`inject`] — deterministic, seeded fault injection:
//!   [`inject::FaultPlan`] (drop / delay / duplicate / kill-after-N
//!   messages) applied by [`inject::FaultyChannel`] around any transport
//!   channel, composing with the WAN simulation in `exdra-net::sim`,
//! * [`straggler`] — per-worker latency histories
//!   ([`straggler::LatencyTracker`]) that derive speculation deadlines
//!   from observed latency quantiles, driving the supervisor's
//!   speculative re-execution of straggler partition requests.
//!
//! The protocol-aware supervisor that uses these primitives (heartbeat
//! RPCs, channel re-establishment, re-registration replay) lives in
//! `exdra-core::supervision`; quorum aggregation over partial failures
//! lives in `exdra-paramserv`.

pub mod detector;
pub mod inject;
pub mod retry;
pub mod straggler;

pub use detector::{FailureDetector, HealthState, WorkerHealth};
pub use inject::{FaultPlan, FaultyChannel};
pub use retry::{splitmix64, Deadline, ErrorClass, RetryPolicy};
pub use straggler::{LatencyTracker, SpeculationPolicy};
